use crate::config::TapestryConfig;
use crate::messages::{Msg, OpId, Timer};
use crate::network::LocateResult;
use crate::object_store::ObjectStore;
use crate::refs::NodeRef;
use crate::repair::RepairTask;
use crate::routing_table::RoutingTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use tapestry_id::Id;
use tapestry_repair::{FactKind, RepairLedger};
use tapestry_sim::{Actor, Ctx, NodeIdx};
use tapestry_trace::metrics;

/// Lifecycle of a Tapestry node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Mid-insertion (Fig. 7); unknown-object queries are forwarded to the
    /// surrogate per Fig. 10.
    Inserting,
    /// Fully integrated (a *core node* in the sense of Definition 1 once
    /// its multicast completed).
    Active,
    /// Voluntary departure in progress (Fig. 12).
    Leaving,
}

/// State of an in-progress insertion on the node being inserted.
#[derive(Debug)]
pub(crate) struct InsertState {
    pub op: OpId,
    pub surrogate: Option<NodeRef>,
    pub shared_len: usize,
    /// `SendID` announcements collected from the multicast.
    pub hellos: Vec<NodeRef>,
    /// Level currently being fetched by `GetNextList`.
    pub level: usize,
    /// Current closest-k list.
    pub list: Vec<NodeRef>,
    /// Nodes whose `Pointers` reply is still outstanding.
    pub pending: BTreeSet<NodeIdx>,
    /// Refs accumulated for the level being fetched.
    pub acc: Vec<NodeRef>,
    /// List size `k` (fixed at insertion start).
    pub k: usize,
    /// Deferred mode (`StartInsertDeferred`): stop after Fig. 7 step 3
    /// and wait for the driver to launch a shared multicast wave.
    pub deferred: bool,
    /// Set when a deferred insert has finished steps 1–3: the coverage
    /// prefix and watch list a shared wave must carry for this insertee.
    pub ready: Option<(tapestry_id::Prefix, Vec<(usize, u8)>)>,
}

/// State of one acknowledged-multicast session on a participant. A solo
/// insertion carries exactly one insertee; a shared wave carries the
/// whole coalesced batch (same ack tree, same pin/unpin discipline).
#[derive(Debug)]
pub(crate) struct McastSession {
    /// Where to send our ack (None = we initiated; completion reports
    /// `MulticastDone` to every insertee instead).
    pub parent: Option<NodeIdx>,
    /// Outstanding child acknowledgments.
    pub pending: usize,
    /// The nodes this multicast introduces, as `(insertion op, node,
    /// covered)`. `covered` records whether this participant matched the
    /// insertee's coverage prefix (always true for a solo wave): only
    /// covered insertees were pinned, so only they are unpinned and
    /// re-offered at session end — an uncovered insertee must leave no
    /// trace here, exactly as if its solo multicast had never arrived.
    pub insertees: Vec<(OpId, NodeRef, bool)>,
}

/// What a deferred insertee reports once Fig. 7 steps 1–3 completed —
/// everything a driver needs to place it into a shared multicast wave.
#[derive(Debug, Clone)]
pub struct BatchJoinInfo {
    /// The insertee's insertion op.
    pub op: OpId,
    /// The insertee itself.
    pub new_node: NodeRef,
    /// Its surrogate (the canonical wave initiator).
    pub surrogate: NodeRef,
    /// Coverage prefix the wave must reach for this insertee (the GCP of
    /// insertee and surrogate — a solo multicast would cover exactly it).
    pub prefix: tapestry_id::Prefix,
    /// Watched holes for the Fig. 11 watch list.
    pub watch: Vec<(usize, u8)>,
}

/// State of a voluntary departure on the departing node.
#[derive(Debug, Default)]
pub(crate) struct LeaveState {
    /// Backpointer holders that have not yet acknowledged `Leaving`.
    pub pending_acks: BTreeSet<NodeIdx>,
    /// Set once `LeaveFinal` went out; the driver may now remove us.
    pub finished: bool,
}

/// Failure-detection state (§5.2).
#[derive(Debug, Default)]
pub(crate) struct ProbeState {
    /// Nonce of the outstanding round.
    pub nonce: u64,
    /// Neighbors that have not answered the outstanding round.
    pub awaiting: BTreeSet<NodeIdx>,
}

/// A Tapestry overlay node: routing mesh, object pointers and all
/// protocol state, driven as a deterministic actor.
pub struct TapestryNode {
    pub(crate) cfg: TapestryConfig,
    pub(crate) me: NodeRef,
    pub(crate) status: NodeStatus,
    pub(crate) table: RoutingTable,
    /// Nodes that keep us in their routing table (§2.1 backpointers).
    pub(crate) backptrs: BTreeMap<NodeIdx, Id>,
    pub(crate) store: ObjectStore,
    pub(crate) op_counter: u64,
    pub(crate) insert: Option<InsertState>,
    pub(crate) mcast: BTreeMap<OpId, McastSession>,
    /// Sessions already completed (suppresses duplicate multicasts, §4.4).
    pub(crate) mcast_done: BTreeSet<OpId>,
    pub(crate) leave: Option<LeaveState>,
    /// Held watch-list entries (§4.4, Fig. 11): `(watcher, level, digit,
    /// op)` holes advertised by inserting nodes that we could not serve at
    /// multicast time. When a node filling one appears here later (e.g. a
    /// concurrent insertee), the watcher is sent a `Candidates` report.
    pub(crate) watches: Vec<(NodeRef, usize, u8, OpId)>,
    pub(crate) probe: ProbeState,
    /// Completed locate operations awaiting collection by the driver.
    pub(crate) locate_results: Vec<LocateResult>,
    /// Locates issued here and still in flight: op → (guid, issue time).
    pub(crate) pending_locates: BTreeMap<OpId, (tapestry_id::Guid, tapestry_sim::SimTime)>,
    /// Staleness-fact ledger and budgeted repair scheduler (incremental
    /// maintenance only; stays empty under `GlobalRounds`).
    pub(crate) repair: RepairLedger<RepairTask>,
    /// Death certificates: peers declared dead by strong evidence (a
    /// bounced message or a missed probe ack). Stale `Candidates` /
    /// `ShareTable` gossip keeps naming dead nodes long after they are
    /// excised; without this set each mention re-adds the corpse, the
    /// next contact bounces, and the remove/re-query cycle repeats —
    /// amplifying repair traffic super-linearly with n. Entries are
    /// retired by a late probe ack (`Readmit`, the flapping path); node
    /// indices are never reused, so there is no expiry. Only populated
    /// under incremental maintenance, so checks against it are no-ops
    /// (and byte-identity-safe) under `GlobalRounds`.
    pub(crate) dead_list: BTreeSet<NodeIdx>,
    pub(crate) rng: StdRng,
}

impl TapestryNode {
    /// Create a node in `Active` state with only self entries (used for
    /// bootstrap and by the static builder, which then fills the table).
    pub fn new_active(cfg: TapestryConfig, me: NodeRef, seed: u64) -> Self {
        Self::with_status(cfg, me, seed, NodeStatus::Active)
    }

    /// Create a node that will join dynamically (`StartInsert` expected).
    pub fn new_inserting(cfg: TapestryConfig, me: NodeRef, seed: u64) -> Self {
        Self::with_status(cfg, me, seed, NodeStatus::Inserting)
    }

    fn with_status(cfg: TapestryConfig, me: NodeRef, seed: u64, status: NodeStatus) -> Self {
        TapestryNode {
            cfg,
            me,
            status,
            table: RoutingTable::new(me, cfg.base(), cfg.levels()),
            backptrs: BTreeMap::new(),
            store: ObjectStore::new(),
            op_counter: 0,
            insert: None,
            mcast: BTreeMap::new(),
            mcast_done: BTreeSet::new(),
            leave: None,
            watches: Vec::new(),
            probe: ProbeState::default(),
            locate_results: Vec::new(),
            pending_locates: BTreeMap::new(),
            repair: RepairLedger::new(),
            dead_list: BTreeSet::new(),
            rng: StdRng::seed_from_u64(seed ^ (me.idx as u64).wrapping_mul(0x9E37_79B9)),
        }
    }

    /// This node's name and address.
    pub fn me(&self) -> NodeRef {
        self.me
    }

    /// Current lifecycle status.
    pub fn status(&self) -> NodeStatus {
        self.status
    }

    /// The routing mesh (read-only; used by invariant checks and tests).
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Mutable mesh access for the static builder.
    pub fn table_mut(&mut self) -> &mut RoutingTable {
        &mut self.table
    }

    /// Object pointers and local replicas.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Mutable store access for the static builder / test setup.
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Backpointer set (who references us).
    pub fn backpointers(&self) -> impl Iterator<Item = NodeRef> + '_ {
        self.backptrs.iter().map(|(&idx, &id)| NodeRef::new(idx, id))
    }

    /// Record a backpointer (static builder).
    pub fn add_backpointer(&mut self, r: NodeRef) {
        self.backptrs.insert(r.idx, r.id);
    }

    /// Voluntary departure finished — safe to remove from the engine.
    pub fn leave_finished(&self) -> bool {
        self.leave.as_ref().is_some_and(|l| l.finished)
    }

    /// If this node is a deferred insertee that finished Fig. 7 steps 1–3
    /// and is waiting for a shared multicast wave, everything the driver
    /// needs to include it in one.
    pub fn batch_join_ready(&self) -> Option<BatchJoinInfo> {
        if self.status != NodeStatus::Inserting {
            return None;
        }
        let ins = self.insert.as_ref()?;
        let (prefix, watch) = ins.ready.as_ref()?;
        Some(BatchJoinInfo {
            op: ins.op,
            new_node: self.me,
            surrogate: ins.surrogate?,
            prefix: *prefix,
            watch: watch.clone(),
        })
    }

    /// Queued repair tasks awaiting budget (0 unless incremental
    /// maintenance is on) — the sampler's per-node backlog contribution.
    pub fn repair_backlog(&self) -> usize {
        self.repair.len()
    }

    /// Drain completed locate operations.
    pub fn take_locate_results(&mut self) -> Vec<LocateResult> {
        std::mem::take(&mut self.locate_results)
    }

    /// One step of the configured surrogate-routing scheme (§2.3):
    /// dispatches between Tapestry-native and distributed PRR-like
    /// routing, threading the PRR-like "past the first hole" state.
    pub fn route_next(
        &self,
        target: &tapestry_id::Id,
        level: usize,
        exclude: Option<NodeIdx>,
        past_hole: bool,
    ) -> (crate::routing_table::Hop, bool) {
        match self.cfg.routing {
            crate::config::RoutingScheme::TapestryNative => {
                (self.table.next_hop(target, level, exclude), past_hole)
            }
            crate::config::RoutingScheme::PrrLike => {
                self.table.next_hop_prr(target, level, exclude, past_hole)
            }
        }
    }

    /// Fresh operation id.
    pub(crate) fn next_op(&mut self) -> OpId {
        self.op_counter += 1;
        OpId::new(self.me.idx, self.op_counter)
    }

    /// Measure, insert into the routing table, and maintain backpointers
    /// (`AddToTableIfCloser` with the §2.1 backpointer discipline).
    pub(crate) fn consider_neighbor(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, r: NodeRef) {
        if r.idx == self.me.idx || self.dead_list.contains(&r.idx) {
            return;
        }
        let dist = ctx.distance_to(r.idx);
        let outcome = self.table.add_if_closer(r, dist, self.cfg.redundancy);
        if outcome.newly_added {
            ctx.send(r.idx, Msg::AddedYou { me: self.me });
            self.notify_watchers(ctx, r);
        }
        for e in outcome.evicted {
            if !self.table.contains(e.idx) {
                ctx.send(e.idx, Msg::RemovedYou { me: self.me });
                // The evictee is alive but no longer routes through us —
                // pointers that traveled via it deserve a re-route once
                // the budget allows (no-op under GlobalRounds).
                self.record_fact(ctx, FactKind::Eviction, RepairTask::ReRoute { peer: e.idx });
            }
        }
    }

    /// Fig. 11: a node we just learned about may fill a hole some
    /// inserting node advertised on its watch list. Report it and retire
    /// the served entries (one candidate is enough to fill a hole; closer
    /// ones keep arriving through the normal protocol).
    pub(crate) fn notify_watchers(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, r: NodeRef) {
        if self.watches.is_empty() {
            return;
        }
        let mut served: Vec<(NodeRef, OpId)> = Vec::new();
        self.watches.retain(|&(watcher, lvl, dig, op)| {
            let fills = watcher.idx != r.idx
                && watcher.id.shared_prefix_len(&r.id) == lvl
                && r.id.digit(lvl) == dig;
            if fills {
                served.push((watcher, op));
            }
            !fills
        });
        for (watcher, op) in served {
            metrics::JOIN_MESSAGES.inc(ctx);
            ctx.send(watcher.idx, Msg::Candidates { op, refs: vec![r] });
        }
    }
}

impl Actor for TapestryNode {
    type Msg = Msg;
    type Timer = Timer;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, from: NodeIdx, msg: Msg) {
        match msg {
            Msg::Routed(m) => self.handle_routed(ctx, Some(from), m),
            Msg::LocateDone { op, server, hops, dist, reached_root } => {
                self.on_locate_done(ctx, op, server, hops, dist, reached_root)
            }
            Msg::SurrogateIs { op, surrogate } => self.on_surrogate_is(ctx, op, surrogate),
            Msg::StartInsert { gateway } => self.start_insert(ctx, gateway, false),
            Msg::StartInsertDeferred { gateway } => self.start_insert(ctx, gateway, true),
            Msg::StartBatchMulticast { insertees } => self.on_start_batch_multicast(ctx, insertees),
            Msg::BatchMulticast { op, prefix, insertees } => {
                self.on_batch_multicast(ctx, from, op, prefix, insertees)
            }
            Msg::GetTableCopy { op, new_node } => self.on_get_table_copy(ctx, op, new_node),
            Msg::TableCopy { op, refs, shared_len } => {
                self.on_table_copy(ctx, op, refs, shared_len)
            }
            Msg::StartMulticast { op, prefix, new_node, watch } => {
                self.on_start_multicast(ctx, op, prefix, new_node, watch)
            }
            Msg::Multicast { op, prefix, new_node, hole, watch } => {
                self.on_multicast(ctx, from, op, prefix, new_node, hole, watch)
            }
            Msg::MulticastAck { op } => self.on_multicast_ack(ctx, op),
            Msg::MulticastDone { op } => self.on_multicast_done(ctx, op),
            Msg::Hello { op, me } => self.on_hello(ctx, op, me),
            Msg::Candidates { op, refs } => self.on_candidates(ctx, op, refs),
            Msg::GetPointers { op, level, new_node } => {
                self.on_get_pointers(ctx, op, level, new_node)
            }
            Msg::Pointers { op, level, refs } => self.on_pointers(ctx, from, op, level, refs),
            Msg::AddedYou { me } => {
                self.backptrs.insert(me.idx, me.id);
                self.consider_neighbor(ctx, me);
            }
            Msg::RemovedYou { me } => {
                self.backptrs.remove(&me.idx);
            }
            Msg::TransferPtrs { ptrs, from: sender } => self.on_transfer_ptrs(ctx, ptrs, sender),
            Msg::TransferAck { guids } => self.on_transfer_ack(ctx, guids),
            Msg::OptimizePtr { ptr, changed, level, sender } => {
                self.on_optimize_ptr(ctx, ptr, changed, level, sender)
            }
            Msg::DeleteBackward { ptr, changed } => self.on_delete_backward(ctx, ptr, changed),
            Msg::Leaving { me, replacements } => self.on_leaving(ctx, me, replacements),
            Msg::LeaveFinal { me } => self.on_leave_final(ctx, me),
            Msg::LeaveAck { me } => self.on_leave_ack(ctx, me),
            Msg::Ping { nonce } => ctx.send(from, Msg::Pong { nonce, me: self.me }),
            Msg::Pong { nonce, me } => self.on_pong(ctx, me, nonce),
            Msg::FindReplacement { op, prefix, digit, dead, reply_to } => {
                self.on_find_replacement(ctx, op, prefix, digit, dead, reply_to)
            }
            Msg::ReplacementCandidates { op: _, refs } => {
                for r in refs {
                    self.consider_neighbor(ctx, r);
                }
            }
            Msg::AppPublish { guid } => self.app_publish(ctx, guid),
            Msg::AppLocate { guid, trace } => self.app_locate(ctx, guid, trace),
            Msg::AppLeave => self.app_leave(ctx),
            Msg::AppProbe => self.start_probe_round(ctx),
            Msg::AppOptimize => self.share_tables_round(ctx),
            Msg::ShareTable { level: _, refs } => {
                for r in refs {
                    self.consider_neighbor(ctx, r);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, timer: Timer) {
        match timer {
            Timer::Republish(guid) => self.on_republish_timer(ctx, guid),
            Timer::ExpirySweep => {
                if self.incremental() {
                    // Expired pointers for objects stored *here* are
                    // soft-state losses we can heal: queue a republish.
                    for guid in self.store.sweep_expired(ctx.now) {
                        if self.store.has_local(guid) {
                            self.record_fact(
                                ctx,
                                FactKind::ExpiredPointer,
                                RepairTask::Republish { guid },
                            );
                        }
                    }
                } else {
                    self.store.sweep(ctx.now);
                }
            }
            Timer::Heartbeat => self.on_heartbeat_timer(ctx),
            Timer::InsertLevelTimeout { op, level } => self.on_insert_timeout(ctx, op, level),
            Timer::ProbeDeadline { nonce } => self.on_probe_deadline(ctx, nonce),
            Timer::McastDeadline { op } => self.on_mcast_deadline(ctx, op),
            Timer::RepairTick => self.on_repair_tick(ctx),
        }
    }

    /// Transport failure notice (enabled only under incremental
    /// maintenance): a message we sent bounced off a dead node — the
    /// "failed Hello" staleness fact. A bounce is authoritative, so the
    /// peer earns a death certificate; once it is fully excised, further
    /// bounces carry no new evidence and are not recorded.
    fn on_contact_failed(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, peer: NodeIdx) {
        let excised = self.dead_list.contains(&peer)
            && !self.table.contains(peer)
            && !self.backptrs.contains_key(&peer);
        if excised {
            return;
        }
        self.dead_list.insert(peer);
        self.record_fact(ctx, FactKind::FailedContact, RepairTask::RemoveDead { peer });
    }
}
