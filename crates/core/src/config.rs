use tapestry_id::IdSpace;
use tapestry_repair::MaintenanceMode;
use tapestry_sim::SimTime;

/// The two localized surrogate-routing variants of §2.3.
///
/// Both resolve one digit per hop with no backtracking, and both produce
/// a unique root under Property 1 (Theorem 2 and its "similar proof" for
/// the PRR-like scheme). They differ in how holes are skipped, which
/// affects how evenly surrogate roots are distributed: the paper notes
/// "the Tapestry Native Routing scheme may have better load balancing
/// properties" — the `ablation_routing` experiment measures exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingScheme {
    /// Route to the next filled entry at the same level, wrapping around
    /// (e.g. desired digit 3 empty → try 4, then 5, …).
    #[default]
    TapestryNative,
    /// Before the first hole, match digits exactly; at the first hole,
    /// take the entry matching the desired digit in the most significant
    /// bits (ties to the numerically higher digit); after the first hole,
    /// always take the numerically highest available digit. Routes to the
    /// root with the numerically largest matching node-ID.
    PrrLike,
}

/// Tuning knobs for a Tapestry deployment.
///
/// Defaults follow the paper: base-16 digits, redundancy `R = 3`
/// (a primary plus two backups per slot, §2.4), a single root per object
/// (`|R_Φ| = 1`, §2.2), and soft-state pointers that expire unless
/// republished (§2.2, §6.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapestryConfig {
    /// Identifier namespace (radix and digit count).
    pub space: IdSpace,
    /// Which localized surrogate-routing variant to use (§2.3).
    pub routing: RoutingScheme,
    /// Neighbor-set capacity `R ≥ 1`: the closest `R` `(α, j)` nodes are
    /// kept per slot; fewer than `R` entries means the slot holds *all*
    /// matching nodes (Property 1).
    pub redundancy: usize,
    /// Size of the per-level candidate list `k` used by the
    /// nearest-neighbor table builder (§3, `KeepClosestK`). `None` selects
    /// `max(8, ceil(3·log2 n))` at insertion time, the paper's
    /// `k = O(log n)`.
    pub list_size_k: Option<usize>,
    /// Number of roots per object, `|R_Φ|` (Observation 2 multi-root).
    pub roots_per_object: usize,
    /// Acknowledged-multicast fan-out bound: at most this many *unpinned*
    /// child branches are forwarded per level (lowest digits first), the
    /// remainder deferred to soft-state repair (probe/optimize rounds).
    /// `None` (the default) forwards every branch — the paper's exact
    /// §4.1 behaviour. Pinned branches are always forwarded (§4.4).
    pub multicast_fanout: Option<usize>,
    /// Lifetime of a published object pointer before it must be
    /// republished (soft state, §2.2).
    pub pointer_ttl: SimTime,
    /// Interval between automatic republishes by storage servers;
    /// `SimTime::ZERO` disables the republish timer (tests drive it
    /// manually).
    pub republish_interval: SimTime,
    /// Interval between heartbeat probe rounds for failure detection
    /// (§5.2); `SimTime::ZERO` disables automatic probing.
    pub heartbeat_interval: SimTime,
    /// How long the neighbor-table builder waits for `GetPointers`
    /// responses at one level before proceeding with whatever arrived
    /// (makes insertion robust to nodes dying mid-insert).
    pub insert_level_timeout: SimTime,
    /// How the mesh is kept healthy under churn: PR 5's synchronized
    /// global probe/optimize rounds (the committed-report baseline) or
    /// fact-driven incremental repair (staleness facts → targeted
    /// `(level, digit)` repair events under a budget).
    pub maintenance: MaintenanceMode,
    /// Incremental-repair budget: repair events per node per maintenance
    /// second (see `tapestry_repair::REPAIR_TICK`). Zero freezes the
    /// scheduler — facts accumulate (bounded) but nothing is repaired.
    /// Ignored under `MaintenanceMode::GlobalRounds`.
    pub repairs_per_sec_per_node: u32,
    /// Enable the §6.3 transit-stub locality enhancement: publishes and
    /// queries spawn a local branch that never leaves the stub. Requires
    /// the driver to supply stub assignments.
    pub local_stub_optimization: bool,
    /// Latency threshold used to decide "same stub" when the locality
    /// optimization is on (§6.3 suggests a threshold heuristic).
    pub stub_latency_threshold: f64,
}

impl TapestryConfig {
    /// The `k` to use for a network that currently has `n` nodes.
    pub fn k_for(&self, n: usize) -> usize {
        match self.list_size_k {
            Some(k) => k,
            None => {
                let lg = (n.max(2) as f64).log2().ceil() as usize;
                (3 * lg).max(8)
            }
        }
    }

    /// Number of routing-table levels.
    pub fn levels(&self) -> usize {
        self.space.levels()
    }

    /// Digit radix `b`.
    pub fn base(&self) -> usize {
        self.space.base as usize
    }
}

impl Default for TapestryConfig {
    fn default() -> Self {
        TapestryConfig {
            space: IdSpace::base16(),
            routing: RoutingScheme::TapestryNative,
            redundancy: 3,
            list_size_k: None,
            roots_per_object: 1,
            multicast_fanout: None,
            // Effectively "until republished": deployments that enable the
            // republish timer should lower this to ~2× the interval so
            // stale pointers actually lapse (§2.2 soft state). The default
            // keeps pointers alive however long a driver lets simulated
            // time run, since with `republish_interval = ZERO` nothing
            // would ever refresh them.
            pointer_ttl: SimTime::from_distance(1e12),
            republish_interval: SimTime::ZERO,
            heartbeat_interval: SimTime::ZERO,
            insert_level_timeout: SimTime::from_distance(50_000.0),
            maintenance: MaintenanceMode::GlobalRounds,
            repairs_per_sec_per_node: 16,
            local_stub_optimization: false,
            stub_latency_threshold: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = TapestryConfig::default();
        assert_eq!(c.base(), 16);
        assert_eq!(c.levels(), 8);
        assert_eq!(c.redundancy, 3);
        assert_eq!(c.roots_per_object, 1);
    }

    #[test]
    fn k_scales_logarithmically() {
        let c = TapestryConfig::default();
        assert_eq!(c.k_for(2), 8, "floor of 8");
        assert_eq!(c.k_for(1024), 30);
        assert!(c.k_for(4096) > c.k_for(256));
    }

    #[test]
    fn explicit_k_overrides() {
        let c = TapestryConfig { list_size_k: Some(12), ..Default::default() };
        assert_eq!(c.k_for(1_000_000), 12);
    }
}
