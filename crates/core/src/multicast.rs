//! Acknowledged multicast (§4.1, Fig. 8) with the watch-list and
//! pinned-pointer extensions for simultaneous insertion (§4.4, Fig. 11).
//!
//! A multicast for prefix `α` reaches every node whose ID starts with `α`:
//! each recipient forwards to one node per one-digit extension `α·j`
//! (recursing in place when it is itself the chosen `(α, j)` node) and
//! acknowledges its parent once all children acknowledged (Theorem 5).
//! The collapsed self-sends of the paper's description are performed
//! in-place here, so the message tree is exactly the spanning tree the
//! paper derives (`k − 1` edges for `k` recipients).

use crate::messages::{Msg, OpId, Timer, WirePtr};
use crate::node::{McastSession, TapestryNode};
use crate::refs::NodeRef;
use tapestry_id::Prefix;
use tapestry_sim::{Ctx, NodeIdx};

impl TapestryNode {
    /// The new node asks its surrogate to initiate the multicast
    /// (Fig. 7 line 4).
    pub(crate) fn on_start_multicast(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        op: OpId,
        prefix: Prefix,
        new_node: NodeRef,
        watch: Vec<(usize, u8)>,
    ) {
        // The hole the new node fills in this (surrogate's) table.
        let hole = self.table.slot_for(&new_node.id);
        self.run_multicast(ctx, op, prefix, new_node, hole, watch, None);
    }

    /// A multicast branch arrived from `from`.
    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    pub(crate) fn on_multicast(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        from: NodeIdx,
        op: OpId,
        prefix: Prefix,
        new_node: NodeRef,
        hole: Option<(usize, u8)>,
        watch: Vec<(usize, u8)>,
    ) {
        if self.mcast_done.contains(&op) || self.mcast.contains_key(&op) {
            // Duplicate (pinned-pointer forwarding can deliver a session
            // twice); the function already ran here — acknowledge so the
            // sender's count stays correct.
            ctx.send(from, Msg::MulticastAck { op });
            return;
        }
        self.run_multicast(ctx, op, prefix, new_node, hole, watch, Some(from));
    }

    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    fn run_multicast(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        op: OpId,
        prefix: Prefix,
        new_node: NodeRef,
        hole: Option<(usize, u8)>,
        watch: Vec<(usize, u8)>,
        parent: Option<NodeIdx>,
    ) {
        ctx.count("multicast.recipients", 1);
        // ---- apply FUNCTION: SendID + pin + watch scan + LinkAndXferRoot
        if new_node.idx != self.me.idx {
            ctx.send(new_node.idx, Msg::Hello { op, me: self.me });
            // Pin the new node in its slot for the duration of the session
            // (§4.4): it must not be evicted, and further multicasts
            // through the slot must reach it.
            let dist = ctx.distance_to(new_node.idx);
            self.table.add_pinned(new_node, dist);
            ctx.send(new_node.idx, Msg::AddedYou { me: self.me });
            self.link_and_xfer_root(ctx, new_node);
            // A concurrently inserting node may be exactly the filler some
            // earlier watcher is still waiting for (§4.4).
            self.notify_watchers(ctx, new_node);
        }
        let watch = self.serve_watch_list(ctx, new_node, op, watch);

        // ---- forward along one unpinned + all pinned pointers per child
        let mut children: Vec<(Prefix, NodeRef)> = Vec::new();
        self.gather_children(prefix, &mut children);
        children.retain(|(_, r)| r.idx != self.me.idx && r.idx != new_node.idx);
        children.sort_by_key(|(_, r)| r.idx);
        children.dedup_by_key(|(_, r)| r.idx);

        let pending = children.len();
        self.mcast.insert(op, McastSession { parent, pending, new_node });
        for (p, r) in children {
            ctx.count("multicast.edges", 1);
            ctx.send(r.idx, Msg::Multicast { op, prefix: p, new_node, hole, watch: watch.clone() });
        }
        if pending == 0 {
            self.complete_session(ctx, op);
        }
    }

    /// Walk the routing table gathering one recipient per one-digit
    /// extension, recursing through extensions where this node is itself
    /// the chosen representative (the paper's self-sends, collapsed).
    fn gather_children(&self, prefix: Prefix, out: &mut Vec<(Prefix, NodeRef)>) {
        let l = prefix.len();
        if l >= self.table.levels() {
            return;
        }
        for j in 0..self.table.base() as u8 {
            let slot = self.table.slot(l, j);
            if slot.is_empty() {
                continue;
            }
            let ext = prefix.extend(j);
            match slot.first_unpinned() {
                Some(u) if u.idx == self.me.idx => self.gather_children(ext, out),
                Some(u) => out.push((ext, u)),
                None => {}
            }
            for p in slot.pinned() {
                if p.idx != self.me.idx {
                    out.push((ext, p));
                }
            }
        }
    }

    /// Fig. 11 watch list: report nodes that fill the new node's watched
    /// holes, and strip served entries from the forwarded list.
    fn serve_watch_list(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        new_node: NodeRef,
        op: OpId,
        watch: Vec<(usize, u8)>,
    ) -> Vec<(usize, u8)> {
        if watch.is_empty() {
            return watch;
        }
        let shared = self.me.id.shared_prefix_len(&new_node.id);
        let mut found = Vec::new();
        let mut remaining = Vec::new();
        for (lvl, dig) in watch {
            // We can only answer for slots whose prefix we share with the
            // new node.
            let mut served = false;
            if lvl <= shared {
                let refs: Vec<NodeRef> =
                    self.table.slot(lvl, dig).iter().filter(|r| r.idx != new_node.idx).collect();
                if !refs.is_empty() {
                    found.extend(refs);
                    served = true;
                }
            }
            if !served {
                remaining.push((lvl, dig));
                // Fig. 11: hold the unserved watch so a later arrival that
                // fills the hole (e.g. a concurrent insertee) still gets
                // reported. Entries are retired when served; many holes
                // have no possible filler and would pile up forever, so at
                // the cap the *oldest* entry is evicted — recent watches
                // (the live races) always get held.
                if lvl <= shared {
                    if self.watches.len() >= 1024 {
                        self.watches.remove(0);
                    }
                    self.watches.push((new_node, lvl, dig, op));
                }
            }
        }
        if !found.is_empty() {
            found.sort();
            found.dedup();
            ctx.send(new_node.idx, Msg::Candidates { op, refs: found });
        }
        remaining
    }

    /// `LinkAndXferRoot` (Fig. 7): hand the new node every stored pointer
    /// whose route now passes through it — pointers we were *root* for
    /// (correctness: the new node may be the new root) as well as plain
    /// path pointers (Property 4: the new node is now on the publish
    /// path). We keep serving until the new holder acknowledges (§4.3:
    /// "the old root not delete pointers until the new root has
    /// acknowledged receiving them" — and in Tapestry the old copies
    /// simply remain as path pointers afterwards).
    fn link_and_xfer_root(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, new_node: NodeRef) {
        let mut ptrs: Vec<WirePtr> = Vec::new();
        let guids: Vec<tapestry_id::Guid> = {
            let mut v: Vec<_> = self.store.iter().map(|(g, _)| g).collect();
            v.sort();
            v.dedup();
            v
        };
        for guid in guids {
            let level = self.me.id.shared_prefix_len(&guid.id());
            if let crate::routing_table::Hop::Forward(p, _) =
                self.route_next(&guid.id(), level, None, false).0
            {
                if p.idx == new_node.idx {
                    for (g, e) in self.store.iter() {
                        if g == guid {
                            ptrs.push(WirePtr { guid: g, server: e.server });
                        }
                    }
                }
            }
        }
        if !ptrs.is_empty() {
            ctx.count("insert.root_transfers", ptrs.len() as u64);
            ctx.send(new_node.idx, Msg::TransferPtrs { ptrs, from: self.me });
        }
    }

    /// A child's subtree finished (Theorem 5 ack).
    pub(crate) fn on_multicast_ack(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, op: OpId) {
        let done = match self.mcast.get_mut(&op) {
            Some(s) => {
                s.pending = s.pending.saturating_sub(1);
                s.pending == 0
            }
            None => false,
        };
        if done {
            self.complete_session(ctx, op);
        }
    }

    fn complete_session(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, op: OpId) {
        let Some(s) = self.mcast.remove(&op) else { return };
        self.mcast_done.insert(op);
        // Unpin: the session is acknowledged here, so the new node is now
        // reachable through the regular multicast tree.
        self.table.unpin(&s.new_node);
        // `add_pinned` placed the new node in its divergence slot only;
        // re-offer it through the regular path so it also gains its nested
        // own-digit memberships (§2.1) now that the session is over.
        self.consider_neighbor(ctx, s.new_node);
        match s.parent {
            Some(p) => ctx.send(p, Msg::MulticastAck { op }),
            None => ctx.send(s.new_node.idx, Msg::MulticastDone { op }),
        }
    }
}
