//! Acknowledged multicast (§4.1, Fig. 8) with the watch-list and
//! pinned-pointer extensions for simultaneous insertion (§4.4, Fig. 11).
//!
//! A multicast for prefix `α` reaches every node whose ID starts with `α`:
//! each recipient forwards to one node per one-digit extension `α·j`
//! (recursing in place when it is itself the chosen `(α, j)` node) and
//! acknowledges its parent once all children acknowledged (Theorem 5).
//! The collapsed self-sends of the paper's description are performed
//! in-place here, so the message tree is exactly the spanning tree the
//! paper derives (`k − 1` edges for `k` recipients).
//!
//! Two extensions ride on the same tree:
//!
//! * **Shared waves** (`BatchMulticast`): a coalesced join batch travels
//!   as *one* wave whose prefix is the common prefix of the batch's
//!   coverage prefixes; each recipient applies the per-insertee FUNCTION
//!   (SendID, pin, watch scan, `LinkAndXferRoot`) only for insertees
//!   whose own coverage prefix it matches — so every insertee sees
//!   exactly the recipients its solo multicast would have reached, while
//!   the batch shares one spanning tree and one ack sweep. Correctness
//!   rests on the §4.4 machinery unchanged: insertees are pinned for the
//!   wave's duration and concurrent insertees are reported through the
//!   Fig. 11 watch lists.
//! * **Fan-out bound** (`TapestryConfig::multicast_fanout`): when set,
//!   each recipient forwards to at most that many unpinned child
//!   branches per level and defers the rest (counted in
//!   `multicast.fanout_deferred`) to soft-state repair — the deferred
//!   subtrees learn the insertee through later probe/optimize rounds and
//!   ordinary traffic instead of the wave.

use crate::messages::{BatchInsertee, Msg, OpId, Timer, WirePtr};
use crate::node::{McastSession, TapestryNode};
use crate::refs::NodeRef;
use crate::repair::RepairTask;
use tapestry_id::Prefix;
use tapestry_repair::FactKind;
use tapestry_sim::{Ctx, NodeIdx};
use tapestry_trace::metrics;

impl TapestryNode {
    /// The new node asks its surrogate to initiate the multicast
    /// (Fig. 7 line 4).
    pub(crate) fn on_start_multicast(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        op: OpId,
        prefix: Prefix,
        new_node: NodeRef,
        watch: Vec<(usize, u8)>,
    ) {
        // The hole the new node fills in this (surrogate's) table.
        let hole = self.table.slot_for(&new_node.id);
        self.run_multicast(ctx, op, prefix, new_node, hole, watch, None);
    }

    /// A multicast branch arrived from `from`.
    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    pub(crate) fn on_multicast(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        from: NodeIdx,
        op: OpId,
        prefix: Prefix,
        new_node: NodeRef,
        hole: Option<(usize, u8)>,
        watch: Vec<(usize, u8)>,
    ) {
        if self.mcast_done.contains(&op) || self.mcast.contains_key(&op) {
            // Duplicate (pinned-pointer forwarding can deliver a session
            // twice); the function already ran here — acknowledge so the
            // sender's count stays correct.
            metrics::JOIN_MESSAGES.inc(ctx);
            ctx.send(from, Msg::MulticastAck { op });
            return;
        }
        self.run_multicast(ctx, op, prefix, new_node, hole, watch, Some(from));
    }

    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    fn run_multicast(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        op: OpId,
        prefix: Prefix,
        new_node: NodeRef,
        hole: Option<(usize, u8)>,
        watch: Vec<(usize, u8)>,
        parent: Option<NodeIdx>,
    ) {
        metrics::MULTICAST_RECIPIENTS.inc(ctx);
        // ---- apply FUNCTION: SendID + pin + watch scan + LinkAndXferRoot
        if new_node.idx != self.me.idx {
            self.apply_wave_function(ctx, op, new_node);
        }
        let watch = self.serve_watch_list(ctx, new_node, op, watch);

        // ---- forward along one unpinned + all pinned pointers per child
        let mut children: Vec<(Prefix, NodeRef)> = Vec::new();
        let mut deferred: Vec<(Prefix, NodeRef)> = Vec::new();
        self.gather_children(prefix, &mut children, &mut deferred);
        if !deferred.is_empty() {
            metrics::MULTICAST_FANOUT_DEFERRED.add(ctx, deferred.len() as u64);
            // Deferred subtrees heal via targeted repair: reintroduce the
            // insertee to each deferred branch's representative instead of
            // waiting for a global round (no-op under GlobalRounds).
            for &(p, rep) in &deferred {
                if rep.idx != new_node.idx {
                    self.record_fact(
                        ctx,
                        FactKind::DeferredBranch,
                        RepairTask::Reintroduce { rep, insertee: new_node, level: p.len() },
                    );
                }
            }
        }
        children.retain(|(_, r)| r.idx != self.me.idx && r.idx != new_node.idx);
        children.sort_by_key(|(_, r)| r.idx);
        children.dedup_by_key(|(_, r)| r.idx);

        let pending = children.len();
        self.mcast
            .insert(op, McastSession { parent, pending, insertees: vec![(op, new_node, true)] });
        for (p, r) in children {
            metrics::MULTICAST_EDGES.inc(ctx);
            metrics::JOIN_MESSAGES.inc(ctx);
            ctx.send(r.idx, Msg::Multicast { op, prefix: p, new_node, hole, watch: watch.clone() });
        }
        if pending == 0 {
            self.complete_session(ctx, op);
        }
    }

    /// The per-insertee half of the multicast FUNCTION: `SendID`, pin the
    /// insertee in its slot for the session's duration (§4.4 — it must
    /// not be evicted, and further multicasts through the slot must reach
    /// it), `LinkAndXferRoot`, and the Fig. 11 concurrent-insertee report
    /// (a new insertee may be exactly the filler some earlier watcher is
    /// still waiting for). Shared verbatim by solo and batched waves so
    /// the two paths cannot drift.
    fn apply_wave_function(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, op: OpId, new_node: NodeRef) {
        metrics::JOIN_MESSAGES.add(ctx, 2);
        ctx.send(new_node.idx, Msg::Hello { op, me: self.me });
        let dist = ctx.distance_to(new_node.idx);
        self.table.add_pinned(new_node, dist);
        ctx.send(new_node.idx, Msg::AddedYou { me: self.me });
        self.link_and_xfer_root(ctx, new_node);
        self.notify_watchers(ctx, new_node);
    }

    /// Driver → wave initiator: one acknowledged multicast carrying a
    /// whole coalesced join batch. The wave covers the common prefix of
    /// the batch's coverage prefixes; co-insertees are introduced to each
    /// other up front under the same coverage rule a solo wave applies
    /// (insertee `a` hears `SendID` from everything `a.prefix` matches —
    /// including concurrent insertees, per §4.4).
    pub(crate) fn on_start_batch_multicast(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        insertees: Vec<BatchInsertee>,
    ) {
        if insertees.is_empty() {
            return;
        }
        metrics::MULTICAST_BATCH_WAVES.inc(ctx);
        metrics::MULTICAST_BATCH_JOINS.add(ctx, insertees.len() as u64);
        for a in &insertees {
            for b in &insertees {
                if a.op != b.op && a.prefix.matches(&b.new_node.id) {
                    metrics::JOIN_MESSAGES.inc(ctx);
                    ctx.send(a.new_node.idx, Msg::Hello { op: a.op, me: b.new_node });
                }
            }
        }
        let prefix = common_wave_prefix(&insertees);
        let op = self.next_op();
        self.run_batch(ctx, op, prefix, insertees, None);
    }

    /// A shared-wave branch arrived from `from`.
    pub(crate) fn on_batch_multicast(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        from: NodeIdx,
        op: OpId,
        prefix: Prefix,
        insertees: Vec<BatchInsertee>,
    ) {
        if self.mcast_done.contains(&op) || self.mcast.contains_key(&op) {
            // Duplicate via pinned-pointer forwarding — ack and stop, as
            // in the solo path.
            metrics::JOIN_MESSAGES.inc(ctx);
            ctx.send(from, Msg::MulticastAck { op });
            return;
        }
        self.run_batch(ctx, op, prefix, insertees, Some(from));
    }

    /// The shared-wave body: apply the FUNCTION per covered insertee, in
    /// batch order, then forward one `BatchMulticast` per child branch of
    /// the *wave* prefix and await Theorem 5 acks.
    fn run_batch(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        op: OpId,
        prefix: Prefix,
        insertees: Vec<BatchInsertee>,
        parent: Option<NodeIdx>,
    ) {
        metrics::MULTICAST_RECIPIENTS.inc(ctx);
        metrics::MULTICAST_BATCH_INSERTEES.add(ctx, insertees.len() as u64);
        let mut fwd: Vec<BatchInsertee> = Vec::with_capacity(insertees.len());
        let mut session: Vec<(OpId, NodeRef, bool)> = Vec::with_capacity(insertees.len());
        for ins in &insertees {
            let covered = ins.prefix.matches(&self.me.id);
            session.push((ins.op, ins.new_node, covered));
            if !covered {
                // Outside this insertee's coverage: a solo wave for it
                // would never have reached this node — pass it along for
                // deeper branches that may match, untouched.
                fwd.push(ins.clone());
                continue;
            }
            if ins.new_node.idx != self.me.idx {
                self.apply_wave_function(ctx, ins.op, ins.new_node);
            }
            let watch = self.serve_watch_list(ctx, ins.new_node, ins.op, ins.watch.clone());
            fwd.push(BatchInsertee { watch, ..ins.clone() });
        }

        let mut children: Vec<(Prefix, NodeRef)> = Vec::new();
        let mut deferred: Vec<(Prefix, NodeRef)> = Vec::new();
        self.gather_children(prefix, &mut children, &mut deferred);
        if !deferred.is_empty() {
            metrics::MULTICAST_FANOUT_DEFERRED.add(ctx, deferred.len() as u64);
            // Same healing as the solo wave, per prefix-compatible
            // insertee (the branch would only have carried those).
            for &(p, rep) in &deferred {
                for ins in &insertees {
                    if (ins.prefix.contains(&p) || p.contains(&ins.prefix))
                        && rep.idx != ins.new_node.idx
                    {
                        self.record_fact(
                            ctx,
                            FactKind::DeferredBranch,
                            RepairTask::Reintroduce { rep, insertee: ins.new_node, level: p.len() },
                        );
                    }
                }
            }
        }
        children
            .retain(|(_, r)| r.idx != self.me.idx && !fwd.iter().any(|i| i.new_node.idx == r.idx));
        children.sort_by_key(|(_, r)| r.idx);
        children.dedup_by_key(|(_, r)| r.idx);
        // Prune: a branch is forwarded only with — and only because of —
        // the insertees whose coverage is prefix-compatible with it, so
        // the wave tree is exactly the *union* of the solo trees the
        // batch replaces (one shared trunk, no ε-explosion when the
        // batch's common prefix collapses), and every node in any
        // insertee's `G(prefix)` is still reached (its whole prefix
        // chain is compatible by construction).
        let branches: Vec<(Prefix, NodeRef, Vec<BatchInsertee>)> = children
            .into_iter()
            .filter_map(|(p, r)| {
                let carry: Vec<BatchInsertee> = fwd
                    .iter()
                    .filter(|i| i.prefix.contains(&p) || p.contains(&i.prefix))
                    .cloned()
                    .collect();
                (!carry.is_empty()).then_some((p, r, carry))
            })
            .collect();

        let pending = branches.len();
        self.mcast.insert(op, McastSession { parent, pending, insertees: session });
        for (p, r, carry) in branches {
            metrics::MULTICAST_EDGES.inc(ctx);
            metrics::JOIN_MESSAGES.inc(ctx);
            ctx.send(r.idx, Msg::BatchMulticast { op, prefix: p, insertees: carry });
        }
        if pending == 0 {
            self.complete_session(ctx, op);
        } else {
            // A child killed mid-wave would strand every join in the
            // batch behind its missing ack; force-complete after a few
            // level deadlines and leave the unreached subtree to repair.
            let deadline = tapestry_sim::SimTime(self.cfg.insert_level_timeout.0.saturating_mul(4));
            ctx.set_timer(deadline, Timer::McastDeadline { op });
        }
    }

    /// A shared wave's ack deadline fired: if the session is still open,
    /// some child subtree is gone — complete anyway (acking upward /
    /// reporting `MulticastDone`) so the batch's joins proceed, and let
    /// soft-state repair reintroduce whatever the lost subtree missed.
    pub(crate) fn on_mcast_deadline(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, op: OpId) {
        if self.mcast.contains_key(&op) {
            metrics::MULTICAST_DEADLINE_FORCED.inc(ctx);
            self.complete_session(ctx, op);
        }
    }

    /// Walk the routing table gathering one recipient per one-digit
    /// extension, recursing through extensions where this node is itself
    /// the chosen representative (the paper's self-sends, collapsed).
    ///
    /// With `TapestryConfig::multicast_fanout` set, at most that many
    /// *unpinned* child branches are forwarded per level (lowest digits
    /// first — deterministic); branches deferred to soft-state repair are
    /// collected into `deferred` (their count is the
    /// `multicast.fanout_deferred` figure, and incremental maintenance
    /// turns each into a targeted reintroduction). Pinned entries are
    /// always forwarded: §4.4 requires every multicast through a pinned
    /// slot to reach the in-flight insertee, bound or no bound.
    fn gather_children(
        &self,
        prefix: Prefix,
        out: &mut Vec<(Prefix, NodeRef)>,
        deferred: &mut Vec<(Prefix, NodeRef)>,
    ) {
        let l = prefix.len();
        if l >= self.table.levels() {
            return;
        }
        let bound = self.cfg.multicast_fanout.unwrap_or(usize::MAX);
        let mut width = 0usize;
        for j in 0..self.table.base() as u8 {
            let slot = self.table.slot(l, j);
            if slot.is_empty() {
                continue;
            }
            let ext = prefix.extend(j);
            match slot.first_unpinned() {
                Some(u) if u.idx == self.me.idx => self.gather_children(ext, out, deferred),
                Some(u) => {
                    if width < bound {
                        out.push((ext, u));
                        width += 1;
                    } else {
                        deferred.push((ext, u));
                    }
                }
                None => {}
            }
            for p in slot.pinned() {
                if p.idx != self.me.idx {
                    out.push((ext, p));
                }
            }
        }
    }

    /// Fig. 11 watch list: report nodes that fill the new node's watched
    /// holes, and strip served entries from the forwarded list.
    fn serve_watch_list(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        new_node: NodeRef,
        op: OpId,
        watch: Vec<(usize, u8)>,
    ) -> Vec<(usize, u8)> {
        if watch.is_empty() {
            return watch;
        }
        let shared = self.me.id.shared_prefix_len(&new_node.id);
        let mut found = Vec::new();
        let mut remaining = Vec::new();
        for (lvl, dig) in watch {
            // We can only answer for slots whose prefix we share with the
            // new node.
            let mut served = false;
            if lvl <= shared {
                let refs: Vec<NodeRef> =
                    self.table.slot(lvl, dig).iter().filter(|r| r.idx != new_node.idx).collect();
                if !refs.is_empty() {
                    found.extend(refs);
                    served = true;
                }
            }
            if !served {
                remaining.push((lvl, dig));
                // Fig. 11: hold the unserved watch so a later arrival that
                // fills the hole (e.g. a concurrent insertee) still gets
                // reported. Entries are retired when served; many holes
                // have no possible filler and would pile up forever, so at
                // the cap the *oldest* entry is evicted — recent watches
                // (the live races) always get held.
                if lvl <= shared {
                    if self.watches.len() >= 1024 {
                        self.watches.remove(0);
                    }
                    self.watches.push((new_node, lvl, dig, op));
                }
            }
        }
        if !found.is_empty() {
            found.sort();
            found.dedup();
            metrics::JOIN_MESSAGES.inc(ctx);
            ctx.send(new_node.idx, Msg::Candidates { op, refs: found });
        }
        remaining
    }

    /// `LinkAndXferRoot` (Fig. 7): hand the new node every stored pointer
    /// whose route now passes through it — pointers we were *root* for
    /// (correctness: the new node may be the new root) as well as plain
    /// path pointers (Property 4: the new node is now on the publish
    /// path). We keep serving until the new holder acknowledges (§4.3:
    /// "the old root not delete pointers until the new root has
    /// acknowledged receiving them" — and in Tapestry the old copies
    /// simply remain as path pointers afterwards).
    fn link_and_xfer_root(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, new_node: NodeRef) {
        let mut ptrs: Vec<WirePtr> = Vec::new();
        let guids: Vec<tapestry_id::Guid> = {
            let mut v: Vec<_> = self.store.iter().map(|(g, _)| g).collect();
            v.sort();
            v.dedup();
            v
        };
        for guid in guids {
            let level = self.me.id.shared_prefix_len(&guid.id());
            if let crate::routing_table::Hop::Forward(p, _) =
                self.route_next(&guid.id(), level, None, false).0
            {
                if p.idx == new_node.idx {
                    for (g, e) in self.store.iter() {
                        if g == guid {
                            ptrs.push(WirePtr { guid: g, server: e.server });
                        }
                    }
                }
            }
        }
        if !ptrs.is_empty() {
            metrics::INSERT_ROOT_TRANSFERS.add(ctx, ptrs.len() as u64);
            metrics::JOIN_MESSAGES.inc(ctx);
            ctx.send(new_node.idx, Msg::TransferPtrs { ptrs, from: self.me });
        }
    }

    /// A child's subtree finished (Theorem 5 ack).
    pub(crate) fn on_multicast_ack(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, op: OpId) {
        let done = match self.mcast.get_mut(&op) {
            Some(s) => {
                s.pending = s.pending.saturating_sub(1);
                s.pending == 0
            }
            None => false,
        };
        if done {
            self.complete_session(ctx, op);
        }
    }

    fn complete_session(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, op: OpId) {
        let Some(s) = self.mcast.remove(&op) else { return };
        self.mcast_done.insert(op);
        for &(_, new_node, covered) in &s.insertees {
            if !covered {
                continue; // never pinned here; leave no trace
            }
            // Unpin: the session is acknowledged here, so the insertee is
            // now reachable through the regular multicast tree.
            self.table.unpin(&new_node);
            // `add_pinned` placed the insertee in its divergence slot
            // only; re-offer it through the regular path so it also gains
            // its nested own-digit memberships (§2.1) now that the
            // session is over.
            self.consider_neighbor(ctx, new_node);
        }
        match s.parent {
            Some(p) => {
                metrics::JOIN_MESSAGES.inc(ctx);
                ctx.send(p, Msg::MulticastAck { op });
            }
            None => {
                // The initiator: report completion to every insertee —
                // covered or not — under its own insertion op (Theorem 6:
                // core nodes from this instant).
                for &(iop, new_node, _) in &s.insertees {
                    metrics::JOIN_MESSAGES.inc(ctx);
                    ctx.send(new_node.idx, Msg::MulticastDone { op: iop });
                }
            }
        }
    }
}

/// The longest prefix every insertee's coverage prefix extends — the
/// prefix one shared wave must cover so each insertee still reaches all
/// of its own `G(prefix)` (usually ε once a batch mixes first digits).
fn common_wave_prefix(insertees: &[BatchInsertee]) -> Prefix {
    let first = insertees[0].prefix;
    let mut len = first.len();
    for ins in &insertees[1..] {
        let p = ins.prefix;
        let mut l = 0;
        while l < len.min(p.len()) && first.digit(l) == p.digit(l) {
            l += 1;
        }
        len = l;
    }
    let mut out = Prefix::empty(first.base());
    for l in 0..len {
        out = out.extend(first.digit(l));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::OpId;
    use tapestry_id::{Id, IdSpace};

    fn insertee(v: u64, plen: usize) -> BatchInsertee {
        let id = Id::from_u64(IdSpace::base16(), v);
        BatchInsertee {
            op: OpId::new(0, v),
            new_node: NodeRef::new(v as usize, id),
            prefix: id.prefix(plen),
            watch: Vec::new(),
        }
    }

    #[test]
    fn common_wave_prefix_is_shared_head() {
        // 0x4227… and 0x42A2… share "42"; adding 0x9000… collapses to ε.
        let two = [insertee(0x4227_0000, 3), insertee(0x42A2_0000, 3)];
        assert_eq!(format!("{}", common_wave_prefix(&two)), "42");
        let three = [insertee(0x4227_0000, 3), insertee(0x42A2_0000, 3), insertee(0x9000_0000, 2)];
        assert!(common_wave_prefix(&three).is_empty());
        // A singleton batch keeps its full coverage prefix.
        let one = [insertee(0x4227_0000, 4)];
        assert_eq!(format!("{}", common_wave_prefix(&one)), "4227");
    }
}
