//! Surrogate routing, publication and location (§2.2–§2.3, Figs. 2–3).

use crate::messages::{Msg, OpId, RoutedKind, RoutedMsg, Timer};
use crate::network::LocateResult;
use crate::node::TapestryNode;
use crate::object_store::PtrEntry;
use crate::refs::NodeRef;
use crate::routing_table::Hop;
use rand::Rng;
use tapestry_id::{root_id, Guid};
use tapestry_sim::{Ctx, NodeIdx, TraceRecord};
use tapestry_trace::{metrics, TraceId};

/// Cap on the loop-prevention header (§4.3 notes the hop count is small,
/// so carrying the path is cheap; the cap bounds pathological churn).
const VISITED_CAP: usize = 64;

impl TapestryNode {
    /// Application publish (Fig. 2): store the replica locally, deposit
    /// our own pointer, and route a publish toward every root.
    pub(crate) fn app_publish(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, guid: Guid) {
        self.store.store_local(guid);
        if self.cfg.republish_interval > tapestry_sim::SimTime::ZERO {
            ctx.set_timer(self.cfg.republish_interval, Timer::Republish(guid));
        }
        self.publish_now(ctx, guid);
    }

    /// Send the publish messages for a locally stored object (initial
    /// publication and every soft-state republish).
    pub(crate) fn publish_now(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, guid: Guid) {
        let expires = ctx.now + self.cfg.pointer_ttl;
        self.store
            .deposit(guid, PtrEntry { server: self.me, last_hop: None, expires, is_root: false });
        for i in 0..self.cfg.roots_per_object {
            let m = RoutedMsg {
                kind: RoutedKind::Publish { guid, server: self.me },
                target: root_id(self.cfg.space, guid, i),
                level: 0,
                past_hole: false,
                exclude: None,
                hops: 0,
                dist: 0.0,
                visited: Vec::new(),
                local_branch: false,
                trace: None,
            };
            self.handle_routed(ctx, None, m);
        }
        if self.cfg.local_stub_optimization {
            // §6.3: spawn a local-branch publish that roots inside the stub.
            let m = RoutedMsg {
                kind: RoutedKind::Publish { guid, server: self.me },
                target: root_id(self.cfg.space, guid, 0),
                level: 0,
                past_hole: false,
                exclude: None,
                hops: 0,
                dist: 0.0,
                visited: Vec::new(),
                local_branch: true,
                trace: None,
            };
            self.handle_routed(ctx, None, m);
        }
    }

    /// Soft-state republish timer (§2.2: "pointers expire and objects must
    /// be republished at regular intervals").
    pub(crate) fn on_republish_timer(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, guid: Guid) {
        if !self.store.has_local(guid) {
            return;
        }
        self.store.sweep(ctx.now);
        self.publish_now(ctx, guid);
        ctx.set_timer(self.cfg.republish_interval, Timer::Republish(guid));
    }

    /// Application locate (Fig. 3): route toward a randomly chosen root,
    /// diverting at the first pointer encountered. `trace` is the hop
    /// trace identity when the driver sampled this locate.
    pub(crate) fn app_locate(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        guid: Guid,
        trace: Option<TraceId>,
    ) {
        let op = self.next_op();
        let root_index = if self.cfg.roots_per_object > 1 {
            self.rng.gen_range(0..self.cfg.roots_per_object)
        } else {
            0
        };
        self.pending_locates.insert(op, (guid, ctx.now));
        let m = RoutedMsg {
            kind: RoutedKind::Locate { guid, origin: self.me, op, root_index },
            target: root_id(self.cfg.space, guid, root_index),
            level: 0,
            past_hole: false,
            exclude: None,
            hops: 0,
            dist: 0.0,
            visited: Vec::new(),
            // §6.3: try to resolve within the stub first.
            local_branch: self.cfg.local_stub_optimization,
            trace,
        };
        self.handle_routed(ctx, None, m);
    }

    /// Core routed-message processing: one hop of surrogate routing, with
    /// the per-kind side effects (pointer check / deposit / surrogate
    /// discovery).
    pub(crate) fn handle_routed(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        prev: Option<NodeIdx>,
        m: RoutedMsg,
    ) {
        let step = self.route_step(&m);
        match m.kind {
            RoutedKind::Locate { guid, origin, op, .. } => {
                // Check for an object pointer at every hop; divert to the
                // replica closest to the *current* node (§2.2).
                let best = self
                    .store
                    .lookup(guid, ctx.now)
                    // store.lookup yields entries in deterministic store
                    // order and min_by keeps the first of equals, so ties
                    // resolve identically on every run/thread count.
                    // tapestry-lint: allow(float-tiebreak)
                    .min_by(|a, b| {
                        ctx.distance_to(a.server.idx)
                            .partial_cmp(&ctx.distance_to(b.server.idx))
                            .unwrap()
                    })
                    .copied();
                if let Some(e) = best {
                    let extra = ctx.distance_to(e.server.idx);
                    let hops = m.hops + u32::from(e.server.idx != self.me.idx);
                    metrics::LOCATE_FOUND.inc(ctx);
                    ctx.send(
                        origin.idx,
                        Msg::LocateDone {
                            op,
                            server: Some(e.server),
                            hops,
                            dist: m.dist + extra,
                            reached_root: matches!(step, Step::Terminal),
                        },
                    );
                    return;
                }
                match step {
                    Step::Forward(p, lvl, ph) => self.forward(ctx, m, p, lvl, ph),
                    Step::LocalRoot => self.resume_global(ctx, m),
                    Step::Terminal => self.locate_not_found(ctx, m, guid, origin, op),
                }
            }
            RoutedKind::Publish { guid, server } => {
                let expires = ctx.now + self.cfg.pointer_ttl;
                let is_root = matches!(step, Step::Terminal);
                self.store.deposit(guid, PtrEntry { server, last_hop: prev, expires, is_root });
                match step {
                    Step::Forward(p, lvl, ph) => self.forward(ctx, m, p, lvl, ph),
                    Step::LocalRoot | Step::Terminal => {
                        metrics::PUBLISH_ROOTED.inc(ctx);
                    }
                }
            }
            RoutedKind::FindSurrogate { reply_to, op } => match step {
                Step::Forward(p, lvl, ph) => {
                    metrics::JOIN_MESSAGES.inc(ctx);
                    self.forward(ctx, m, p, lvl, ph)
                }
                Step::LocalRoot | Step::Terminal => {
                    metrics::JOIN_MESSAGES.inc(ctx);
                    ctx.send(reply_to.idx, Msg::SurrogateIs { op, surrogate: self.me });
                }
            },
        }
    }

    /// Decide the next hop for a routed message at this node, under the
    /// configured §2.3 routing scheme.
    fn route_step(&self, m: &RoutedMsg) -> Step {
        if m.local_branch {
            return match self.next_hop_local(&m.target, m.level) {
                Some((p, lvl)) if !m.visited.contains(&p.idx) => Step::Forward(p, lvl, m.past_hole),
                _ => Step::LocalRoot,
            };
        }
        match self.route_next(&m.target, m.level, m.exclude, m.past_hole) {
            (Hop::Forward(p, lvl), ph) if !m.visited.contains(&p.idx) => Step::Forward(p, lvl, ph),
            (Hop::Forward(..), _) => Step::Terminal, // loop guard (§4.3 header check)
            (Hop::Root, _) => Step::Terminal,
        }
    }

    /// Take one hop: update accounting headers and send. When the message
    /// carries a [`TraceId`] and tracing is on, one causal hop record
    /// `(level, digit, from, to, dist, cumulative dist)` lands in the
    /// engine's bounded collector — the raw material of per-hop stretch
    /// attribution and hop-count CDFs.
    fn forward(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        mut m: RoutedMsg,
        p: NodeRef,
        lvl: usize,
        past_hole: bool,
    ) {
        m.past_hole = past_hole;
        m.level = lvl;
        let d = ctx.distance_to(p.idx);
        m.dist += d;
        if let (Some(tid), true) = (m.trace, ctx.trace_enabled()) {
            ctx.trace(TraceRecord {
                trace: tid.raw(),
                kind: match m.kind {
                    RoutedKind::Locate { .. } => "locate",
                    RoutedKind::Publish { .. } => "publish",
                    RoutedKind::FindSurrogate { .. } => "join",
                },
                hop: m.hops,
                level: lvl as u32,
                digit: m.target.digit(lvl.saturating_sub(1)),
                from: self.me.idx,
                to: p.idx,
                dist: d,
                cum_dist: m.dist,
                at: ctx.now,
            });
        }
        m.hops += 1;
        if m.visited.len() < VISITED_CAP {
            m.visited.push(self.me.idx);
        }
        metrics::ROUTE_HOPS.inc(ctx);
        ctx.send(p.idx, Msg::Routed(m));
    }

    /// §6.3: a local branch reached the stub-local root without resolving;
    /// resume wide-area routing from here ("resumes at that hop").
    fn resume_global(&mut self, ctx: &mut Ctx<'_, Msg, Timer>, mut m: RoutedMsg) {
        metrics::LOCALITY_RESUME_GLOBAL.inc(ctx);
        m.local_branch = false;
        m.level = 0;
        self.handle_routed(ctx, None, m);
    }

    /// Origin-side completion: record the result for the driver.
    pub(crate) fn on_locate_done(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        op: OpId,
        server: Option<NodeRef>,
        hops: u32,
        dist: f64,
        reached_root: bool,
    ) {
        let Some((guid, issued_at)) = self.pending_locates.remove(&op) else {
            return; // duplicate or forged completion
        };
        self.locate_results.push(LocateResult {
            guid,
            op,
            server,
            hops,
            distance: dist,
            reached_root,
            issued_at,
            completed_at: ctx.now,
        });
    }
}

enum Step {
    Forward(NodeRef, usize, bool),
    /// Local branch terminated at the stub-local root (§6.3).
    LocalRoot,
    /// This node is the target's (global) root.
    Terminal,
}
