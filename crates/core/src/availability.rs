//! Keeping objects available during insertion (§4.3, Fig. 10).

use crate::messages::{Msg, OpId, RoutedMsg, Timer};
use crate::node::{NodeStatus, TapestryNode};
use crate::refs::NodeRef;
use tapestry_id::Guid;
use tapestry_sim::Ctx;
use tapestry_trace::metrics;

impl TapestryNode {
    /// A locate terminated at this node (its root) without finding a
    /// pointer — the `ObjectNotFound` handler of Fig. 10.
    ///
    /// * If we are still inserting, requests for objects we do not (yet)
    ///   have are bounced to the pre-insertion surrogate, routing "as if
    ///   we did not know about ourselves". The surrogate either has the
    ///   pointer (transfers keep the old root serving until acknowledged)
    ///   or the object does not exist.
    /// * Otherwise the object is genuinely unpublished (or its soft state
    ///   lapsed): report failure to the origin.
    ///
    /// Loops are prevented by the visited list in the message header,
    /// exactly as §4.3 prescribes.
    pub(crate) fn locate_not_found(
        &mut self,
        ctx: &mut Ctx<'_, Msg, Timer>,
        mut m: RoutedMsg,
        _guid: Guid,
        origin: NodeRef,
        op: OpId,
    ) {
        if self.status == NodeStatus::Inserting {
            if let Some(s) = self.insert.as_ref().and_then(|i| i.surrogate) {
                if s.idx != self.me.idx && !m.visited.contains(&s.idx) {
                    metrics::AVAILABILITY_BOUNCE_TO_SURROGATE.inc(ctx);
                    m.level = 0;
                    m.exclude = Some(self.me.idx);
                    m.hops += 1;
                    m.dist += ctx.distance_to(s.idx);
                    m.visited.push(self.me.idx);
                    ctx.send(s.idx, Msg::Routed(m));
                    return;
                }
            }
        }
        metrics::LOCATE_NOT_FOUND.inc(ctx);
        ctx.send(
            origin.idx,
            Msg::LocateDone { op, server: None, hops: m.hops, dist: m.dist, reached_root: true },
        );
    }
}
