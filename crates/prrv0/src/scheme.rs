// Every HashMap in this module (member_pos, lists, list_sizes) is built
// once from deterministic input and then only read by key lookup — no
// iteration ever escapes, so hash order cannot reach a report.
// tapestry-lint: allow-file(hash-iter)
use crate::sampling::{sample_sets, SamplingParams};
use std::collections::HashMap;
use tapestry_metric::{MetricSpace, PointIdx};

/// Result of one PRR v.0 lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrrV0Lookup {
    /// Server found (`None`: key never published).
    pub server: Option<PointIdx>,
    /// Levels descended before the hit (1 = found at the densest level).
    pub levels_tried: usize,
    /// Messages spent (2 per representative probed, plus the final fetch).
    pub messages: u64,
    /// Total metric distance traveled: probe round trips plus the final
    /// trip to the server.
    pub distance: f64,
}

/// The static §7 object-location structure over a fixed member set.
pub struct PrrV0 {
    space: Box<dyn MetricSpace>,
    members: Vec<PointIdx>,
    params: SamplingParams,
    /// `rep[m_idx][i][j]`: the member of `S_{i,j}` closest to member
    /// `members[m_idx]` (`None` when the sparse sample came up empty).
    rep: Vec<Vec<Vec<Option<PointIdx>>>>,
    member_pos: HashMap<PointIdx, usize>,
    /// Directory lists at sampled nodes: `(sample node, key) → servers`.
    lists: HashMap<(PointIdx, u64), Vec<PointIdx>>,
    /// Per-node directory entry counts (space accounting).
    list_sizes: HashMap<PointIdx, usize>,
}

impl PrrV0 {
    /// Build the structure for `members` of `space` with `c` repetition
    /// factor (the paper's `c·log n` columns).
    ///
    /// Representative selection ("closest member of `S_{i,j}`") goes
    /// through one [`tapestry_metric::NearestIndex`] per sample set
    /// instead of a per-member brute scan — `O(sets · (|S| + n))` instead
    /// of `O(n · Σ|S|)`, which is what lets PRR v.0 join the scale runs.
    /// A member *inside* its sample set is its own representative at
    /// distance 0 ([`tapestry_metric::NearestIndex::nearest_or_self`]).
    pub fn build(space: Box<dyn MetricSpace>, members: Vec<PointIdx>, c: usize, seed: u64) -> Self {
        assert!(!members.is_empty());
        let params = SamplingParams::for_n(members.len(), c);
        let sets = sample_sets(&members, params, seed);
        let mut rep = vec![vec![vec![None; params.cols]; params.levels + 1]; members.len()];
        for (i, level_sets) in sets.iter().enumerate() {
            for (j, set) in level_sets.iter().enumerate() {
                let ix = space.build_index(set.clone());
                for (m_idx, &m) in members.iter().enumerate() {
                    rep[m_idx][i][j] = ix.nearest_or_self(m);
                }
            }
        }
        let member_pos = members.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        PrrV0 {
            space,
            members,
            params,
            rep,
            member_pos,
            lists: HashMap::new(),
            list_sizes: HashMap::new(),
        }
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when empty (never: `build` requires members).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Sampling shape in force.
    pub fn params(&self) -> SamplingParams {
        self.params
    }

    /// Publish `key` from `server`: every representative of the server
    /// records the object ("each node in S_{i,j} stores a list of all
    /// objects located at nodes which point to it"). Returns messages
    /// spent (one per distinct representative).
    pub fn publish(&mut self, server: PointIdx, key: u64) -> u64 {
        let pos = self.member_pos[&server];
        let mut informed = std::collections::BTreeSet::new();
        for per_col in &self.rep[pos] {
            for &s in per_col.iter().flatten() {
                if informed.insert(s) {
                    *self.list_sizes.entry(s).or_insert(0) += 1;
                }
                let servers = self.lists.entry((s, key)).or_default();
                if !servers.contains(&server) {
                    servers.push(server);
                }
            }
        }
        informed.len() as u64
    }

    /// Locate `key` from `origin`: descend from the densest level, asking
    /// all `c·log n` representatives per level in parallel, per §7.
    pub fn locate(&self, origin: PointIdx, key: u64) -> PrrV0Lookup {
        let pos = self.member_pos[&origin];
        let mut messages = 0u64;
        let mut distance = 0.0;
        let mut tried = 0usize;
        for i in (0..=self.params.levels).rev() {
            tried += 1;
            let mut hit: Option<PointIdx> = None;
            // All j probed in parallel; latency is the max round trip but
            // *distance traveled* (the paper's traffic measure) sums them.
            for &s in self.rep[pos][i].iter().flatten() {
                messages += 2;
                distance += 2.0 * self.space.distance(origin, s);
                if hit.is_none() {
                    if let Some(servers) = self.lists.get(&(s, key)) {
                        hit = servers.first().copied();
                    }
                }
            }
            if let Some(server) = hit {
                messages += 1;
                distance += self.space.distance(origin, server);
                return PrrV0Lookup {
                    server: Some(server),
                    levels_tried: tried,
                    messages,
                    distance,
                };
            }
        }
        PrrV0Lookup { server: None, levels_tried: tried, messages, distance }
    }

    /// Per-node space: representative pointers per member plus directory
    /// list entries at sampled nodes. Returns (avg, max) over members.
    pub fn space_per_node(&self) -> (f64, usize) {
        let rep_per_node = (self.params.levels + 1) * self.params.cols;
        let mut max = 0usize;
        let mut total = 0usize;
        for &m in &self.members {
            let lists = self.list_sizes.get(&m).copied().unwrap_or(0);
            let e = rep_per_node + lists;
            total += e;
            max = max.max(e);
        }
        (total as f64 / self.members.len() as f64, max)
    }

    /// The metric space (for external stretch computation).
    pub fn space(&self) -> &dyn MetricSpace {
        &*self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapestry_metric::{TorusSpace, TransitStubSpace};

    fn build(n: usize, seed: u64) -> PrrV0 {
        let space = TorusSpace::random(n, 1000.0, seed);
        PrrV0::build(Box::new(space), (0..n).collect(), 2, seed)
    }

    #[test]
    fn locate_finds_published_objects() {
        let mut s = build(128, 1);
        s.publish(5, 42);
        for origin in [0, 17, 63, 127] {
            let r = s.locate(origin, 42);
            assert_eq!(r.server, Some(5), "origin {origin}");
        }
    }

    #[test]
    fn locate_misses_unpublished_objects() {
        let s = build(64, 2);
        let r = s.locate(0, 999);
        assert_eq!(r.server, None);
        assert_eq!(r.levels_tried, s.params().levels + 1, "descended to S_0,0");
    }

    #[test]
    fn level_zero_guarantees_a_hit() {
        // Even if every denser level misses, S_{0,0} is shared by all
        // nodes, so a published object is always found (§7: "this will
        // always find the object, if it exists").
        let mut s = build(64, 3);
        for k in 0..20u64 {
            s.publish((k as usize * 3) % 64, k);
        }
        for k in 0..20u64 {
            for origin in [1usize, 30, 62] {
                assert!(s.locate(origin, k).server.is_some(), "key {k} from {origin}");
            }
        }
    }

    #[test]
    fn stretch_is_polylogarithmic_on_general_metric() {
        // The whole point of §7: no growth restriction needed. Use the
        // clustered transit-stub metric.
        let space = TransitStubSpace::new(3, 3, 16, 4);
        let n = space.len();
        let members: Vec<usize> = (0..n).collect();
        let mut s = PrrV0::build(Box::new(space), members, 2, 4);
        let mut stretches = Vec::new();
        for k in 0..30u64 {
            let server = (k as usize * 7) % n;
            s.publish(server, k);
            for origin in (0..n).step_by(13) {
                if origin == server {
                    continue;
                }
                let r = s.locate(origin, k);
                let direct = s.space().distance(origin, server);
                if direct > 0.0 {
                    stretches.push(r.distance / direct);
                }
            }
        }
        let mean = stretches.iter().sum::<f64>() / stretches.len() as f64;
        // log₂ 144 ≈ 7.2; Theorem 7 allows O(log³ n); the measured mean
        // should sit far below that worst case.
        assert!(mean < 7.2f64.powi(3), "mean stretch {mean} above the log³ bound");
    }

    #[test]
    fn space_is_polylogarithmic_per_node() {
        let mut s = build(256, 5);
        for k in 0..50 {
            s.publish((k as usize * 5) % 256, k);
        }
        let (avg, _max) = s.space_per_node();
        let lg = 8.0; // log2 256
                      // reps: (levels+1)·cols = 9·16 = 144 = O(log² n); lists add O(1)
                      // amortized per object.
        assert!(avg < 3.0 * lg * lg + 50.0, "avg per-node space {avg} too large");
        assert!(avg >= 144.0, "representative pointers are always stored");
    }

    #[test]
    fn nearby_objects_found_at_dense_levels() {
        // Statistical sanity: when the object is at the origin's nearest
        // neighbor, the dense levels usually already share a
        // representative, so few levels are descended on average.
        let mut s = build(256, 6);
        let mut total_tried = 0usize;
        let mut count = 0usize;
        for k in 0..40u64 {
            let server = (k as usize * 11) % 256;
            s.publish(server, k);
            let r = s.locate((server + 1) % 256, k);
            assert!(r.server.is_some());
            total_tried += r.levels_tried;
            count += 1;
        }
        let avg = total_tried as f64 / count as f64;
        assert!(
            avg < (s.params().levels + 1) as f64 * 0.9,
            "avg levels tried {avg} ≈ full descent"
        );
    }
}
