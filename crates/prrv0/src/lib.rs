//! PRR v.0: the paper's §7 scheme for **general metric spaces**.
//!
//! A static random-sampling structure: for `i ∈ [1, log n]` and
//! `j ∈ [0, c·log n]`, the set `S_{i,j}` samples each node with
//! probability `2^i / n` (nested in `i`, as the end of the proof of
//! Theorem 7 requires), plus a single global node `S_{0,0}`. Every node
//! stores its closest member of each `S_{i,j}`; every sampled node stores
//! the objects of the nodes that point to it. A query descends from the
//! densest level: at level `i` it asks its `c·log n` representatives in
//! parallel, stopping at the first level where some representative is
//! shared with the object's server.
//!
//! Theorem 7: the first shared level satisfies
//! `d(S_{i*,j}, X) ≤ d(X, Y)·log n` w.h.p., giving polylogarithmic
//! stretch with `O(log² n)` average space — on *any* metric, no
//! growth-restriction needed. This crate reproduces the scheme and its
//! measured columns in Table 1 (the `PRR v.0 + This Paper` row).

#![forbid(unsafe_code)]

mod sampling;
mod scheme;

pub use sampling::{sample_sets, SamplingParams};
pub use scheme::{PrrV0, PrrV0Lookup};
