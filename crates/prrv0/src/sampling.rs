// The S_{i,j} double-index notation of §7 is clearest as explicit
// index loops; suppress clippy's iterator rewrite for the whole file.
#![allow(clippy::needless_range_loop)]
use tapestry_id::splitmix64;
use tapestry_metric::PointIdx;

/// Shape of the §7 sampling structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingParams {
    /// Number of density levels, `⌈log₂ n⌉` (level `i ∈ [1, levels]`
    /// samples with probability `2^i / 2^levels`).
    pub levels: usize,
    /// Independent repetitions per level, the paper's `c·log n` columns.
    pub cols: usize,
}

impl SamplingParams {
    /// Paper defaults for an `n`-node network: `log₂ n` levels and
    /// `c·log₂ n` columns.
    pub fn for_n(n: usize, c: usize) -> Self {
        let lg = (n.max(2) as f64).log2().ceil() as usize;
        SamplingParams { levels: lg.max(1), cols: (c * lg).max(1) }
    }
}

/// Build the nested sample sets `S_{i,j}` over `members`.
///
/// Returned as `sets[i][j]`, `i ∈ [0, levels]`: `sets[0][j]` holds the
/// single `S_{0,0}` node (identical across `j` for simplicity), and
/// membership is nested — `sets[i][j] ⊆ sets[i+1][j]` — via the standard
/// rank trick: node `m` enters `S_{i,j}` iff `rank_j(m) < 2^i / 2^levels`,
/// so the probability of being in `S_{i,j}` is `2^i / n` exactly as §7
/// prescribes.
pub fn sample_sets(
    members: &[PointIdx],
    params: SamplingParams,
    seed: u64,
) -> Vec<Vec<Vec<PointIdx>>> {
    let denom = 1u64 << params.levels;
    let mut sets = vec![vec![Vec::new(); params.cols]; params.levels + 1];
    for j in 0..params.cols {
        for &m in members {
            // rank_j(m) ∈ [0, 1) as a 52-bit fraction, stable per (m, j).
            let h = splitmix64(splitmix64(m as u64 ^ seed) ^ (j as u64).wrapping_mul(0xA5A5_A5A5));
            let frac = (h >> 12) as f64 / (1u64 << 52) as f64;
            for i in 1..=params.levels {
                let p = (1u64 << i) as f64 / denom as f64;
                if frac < p {
                    sets[i][j].push(m);
                }
            }
        }
    }
    // S_{0,0}: one node chosen at random; replicate across columns so the
    // query loop can treat level 0 uniformly.
    let chosen = members[(splitmix64(seed ^ 0xD1CE) % members.len() as u64) as usize];
    for j in 0..params.cols {
        sets[0][j].push(chosen);
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_scale_with_n() {
        let p = SamplingParams::for_n(1024, 2);
        assert_eq!(p.levels, 10);
        assert_eq!(p.cols, 20);
    }

    #[test]
    fn sets_are_nested_in_density() {
        let members: Vec<usize> = (0..256).collect();
        let params = SamplingParams::for_n(256, 2);
        let sets = sample_sets(&members, params, 9);
        for j in 0..params.cols {
            for i in 1..params.levels {
                let lo: std::collections::BTreeSet<_> = sets[i][j].iter().collect();
                let hi: std::collections::BTreeSet<_> = sets[i + 1][j].iter().collect();
                assert!(lo.is_subset(&hi), "S_{{{i},{j}}} ⊄ S_{{{},{j}}}", i + 1);
            }
        }
    }

    #[test]
    fn densest_level_is_everyone() {
        let members: Vec<usize> = (0..128).collect();
        let params = SamplingParams::for_n(128, 1);
        let sets = sample_sets(&members, params, 3);
        for j in 0..params.cols {
            assert_eq!(sets[params.levels][j].len(), 128, "p = 1 at the top level");
        }
    }

    #[test]
    fn sizes_follow_geometric_growth() {
        let members: Vec<usize> = (0..1024).collect();
        let params = SamplingParams::for_n(1024, 2);
        let sets = sample_sets(&members, params, 4);
        // E|S_{i,j}| = 2^i; check the middle level within generous bounds.
        let i = 6;
        let avg: f64 =
            (0..params.cols).map(|j| sets[i][j].len() as f64).sum::<f64>() / params.cols as f64;
        assert!(avg > 32.0 && avg < 128.0, "E|S_6| = 64, got {avg}");
    }

    #[test]
    fn level_zero_is_single_and_consistent() {
        let members: Vec<usize> = (0..64).collect();
        let params = SamplingParams::for_n(64, 2);
        let sets = sample_sets(&members, params, 5);
        let first = sets[0][0][0];
        for j in 0..params.cols {
            assert_eq!(sets[0][j], vec![first]);
        }
    }
}
